// Command run simulates a single random execution of a program under a
// chosen memory model (sc, ra, sra or tso) and prints the interleaved
// trace with the final registers — a debugging companion to the
// exhaustive tools: where cmd/rocker proves, cmd/run shows one concrete
// run, weak-memory effects included.
//
// Usage:
//
//	run -model ra -seed 7 file.lit
//	run -model ra -corpus SB -tries 200    # hunt for a weak outcome
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/memra"
	"repro/internal/memsc"
	"repro/internal/memtso"
	"repro/internal/parser"
	"repro/internal/prog"
)

func main() {
	model := flag.String("model", "ra", "memory model: sc, ra, sra or tso")
	seed := flag.Int64("seed", 1, "scheduler seed")
	tries := flag.Int("tries", 1, "number of runs (distinct seeds from -seed up)")
	maxSteps := flag.Int("maxsteps", 10_000, "step budget per run")
	corpusName := flag.String("corpus", "", "run a built-in corpus program")
	flag.Parse()

	var program *lang.Program
	switch {
	case *corpusName != "":
		e, err := litmus.Get(*corpusName)
		if err != nil {
			fatal(err)
		}
		program = e.Program()
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		program, err = parser.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: run -model sc|ra|sra|tso [flags] file.lit")
		os.Exit(2)
	}

	for i := 0; i < *tries; i++ {
		s := *seed + int64(i)
		verbose := *tries == 1
		if runOnce(program, *model, s, *maxSteps, verbose) && !verbose {
			fmt.Printf("seed %d: assertion failed — weak outcome found; replay with -seed %d -tries 1\n", s, s)
			os.Exit(1)
		}
	}
	if *tries > 1 {
		fmt.Printf("%d runs, no assertion failures\n", *tries)
	}
}

// runOnce simulates one run; returns true if an assertion failed.
func runOnce(program *lang.Program, model string, seed int64, maxSteps int, verbose bool) bool {
	rng := rand.New(rand.NewSource(seed))
	p := prog.New(program)
	st := p.InitStateRaw()
	scMem := memsc.New(program.NumLocs())
	raMem := memra.New(program.NumLocs(), program.NumThreads())
	tsoMem := memtso.New(program.NumLocs(), program.NumThreads())
	sra := model == "sra"

	say := func(format string, args ...any) {
		if verbose {
			fmt.Printf(format+"\n", args...)
		}
	}
	for step := 0; step < maxSteps; step++ {
		// Collect the enabled moves.
		type move struct {
			t     int
			flush bool
		}
		var moves []move
		for t := range p.Threads {
			th := &p.Threads[t]
			ts := st.Threads[t]
			if th.Terminated(ts) {
				continue
			}
			if th.AtEps(ts) {
				moves = append(moves, move{t: t})
				continue
			}
			op := th.Op(ts)
			enabled := false
			switch model {
			case "sc":
				_, enabled = prog.SCLabel(op, scMem[op.Loc], program.ValCount)
			case "ra", "sra":
				enabled = raEnabled(raMem, lang.Tid(t), op, sra)
			case "tso":
				enabled = tsoEnabled(tsoMem, lang.Tid(t), op)
			default:
				fatal(fmt.Errorf("unknown model %q", model))
			}
			if enabled {
				moves = append(moves, move{t: t})
			}
		}
		if model == "tso" {
			for t := 0; t < program.NumThreads(); t++ {
				if tsoMem.CanFlush(lang.Tid(t)) {
					moves = append(moves, move{t: t, flush: true})
				}
			}
		}
		if len(moves) == 0 {
			break // all terminated or blocked
		}
		mv := moves[rng.Intn(len(moves))]
		if mv.flush {
			tsoMem.Flush(lang.Tid(mv.t))
			say("%3d: %s: (flush)", step, program.Threads[mv.t].Name)
			continue
		}
		th := &p.Threads[mv.t]
		ts := st.Threads[mv.t]
		if th.AtEps(ts) {
			next, afail := th.StepEps(ts)
			if afail != nil {
				say("%3d: %s: ASSERTION FAILED at pc %d", step, program.Threads[mv.t].Name, afail.PC)
				return true
			}
			st.Threads[mv.t] = next
			continue
		}
		op := th.Op(ts)
		var label lang.Label
		switch model {
		case "sc":
			label, _ = prog.SCLabel(op, scMem[op.Loc], program.ValCount)
			scMem.Step(label)
		case "ra", "sra":
			label = raStep(rng, raMem, lang.Tid(mv.t), op, sra, program.ValCount)
		case "tso":
			label = tsoStep(tsoMem, lang.Tid(mv.t), op, program.ValCount)
		}
		st.Threads[mv.t] = th.ApplyRaw(ts, label)
		say("%3d: %s: %s", step, program.Threads[mv.t].Name, program.FmtLabel(label))
	}
	if verbose {
		fmt.Println("final registers:")
		for t := range p.Threads {
			fmt.Printf("  %s:", program.Threads[t].Name)
			for r, v := range st.Threads[t].Regs {
				fmt.Printf(" %s=%d", program.Threads[t].RegNames[r], v)
			}
			fmt.Println()
		}
	}
	return false
}

func raEnabled(m *memra.State, tid lang.Tid, op prog.MemOp, sra bool) bool {
	switch op.Kind {
	case prog.OpWrite:
		return true
	case prog.OpRead:
		return len(m.ReadCandidates(tid, op.Loc)) > 0
	case prog.OpWait:
		for _, msg := range m.ReadCandidates(tid, op.Loc) {
			if msg.Val == op.WVal {
				return true
			}
		}
		return false
	case prog.OpCAS:
		return len(m.ReadCandidates(tid, op.Loc)) > 0
	case prog.OpBCAS:
		cands := m.RMWCandidates(tid, op.Loc)
		if sra {
			cands = m.RMWCandidatesSRA(tid, op.Loc)
		}
		for _, msg := range cands {
			if msg.Val == op.Exp {
				return true
			}
		}
		return false
	default: // FADD, XCHG
		if sra {
			return len(m.RMWCandidatesSRA(tid, op.Loc)) > 0
		}
		return len(m.RMWCandidates(tid, op.Loc)) > 0
	}
}

func raStep(rng *rand.Rand, m *memra.State, tid lang.Tid, op prog.MemOp, sra bool, valCount int) lang.Label {
	pick := func(msgs []memra.Msg) memra.Msg { return msgs[rng.Intn(len(msgs))] }
	switch op.Kind {
	case prog.OpWrite:
		var slot memra.Time
		if sra {
			slot = m.WriteSlotSRA(op.Loc)
		} else {
			slots := m.WriteSlots(tid, op.Loc, 3)
			slot = slots[rng.Intn(len(slots))]
		}
		m.Write(tid, op.Loc, op.WVal, slot)
		return lang.WriteLab(op.Loc, op.WVal)
	case prog.OpRead:
		msg := pick(m.ReadCandidates(tid, op.Loc))
		m.Read(tid, msg)
		return lang.ReadLab(op.Loc, msg.Val)
	case prog.OpWait:
		var ok []memra.Msg
		for _, msg := range m.ReadCandidates(tid, op.Loc) {
			if msg.Val == op.WVal {
				ok = append(ok, msg)
			}
		}
		msg := pick(ok)
		m.Read(tid, msg)
		return lang.ReadLab(op.Loc, msg.Val)
	case prog.OpCAS, prog.OpBCAS:
		cands := m.RMWCandidates(tid, op.Loc)
		if sra {
			cands = m.RMWCandidatesSRA(tid, op.Loc)
		}
		var succ []memra.Msg
		for _, msg := range cands {
			if msg.Val == op.Exp {
				succ = append(succ, msg)
			}
		}
		if len(succ) > 0 && (op.Kind == prog.OpBCAS || rng.Intn(2) == 0) {
			msg := pick(succ)
			m.RMW(tid, msg, op.New)
			return lang.RMWLab(op.Loc, msg.Val, op.New)
		}
		var fail []memra.Msg
		for _, msg := range m.ReadCandidates(tid, op.Loc) {
			if msg.Val != op.Exp {
				fail = append(fail, msg)
			}
		}
		if len(fail) == 0 {
			msg := pick(succ)
			m.RMW(tid, msg, op.New)
			return lang.RMWLab(op.Loc, msg.Val, op.New)
		}
		msg := pick(fail)
		m.Read(tid, msg)
		return lang.ReadLab(op.Loc, msg.Val)
	default: // FADD, XCHG
		cands := m.RMWCandidates(tid, op.Loc)
		if sra {
			cands = m.RMWCandidatesSRA(tid, op.Loc)
		}
		msg := pick(cands)
		vw := op.New
		if op.Kind == prog.OpFADD {
			vw = lang.Val((int(msg.Val) + int(op.Add)) % valCount)
		}
		m.RMW(tid, msg, vw)
		return lang.RMWLab(op.Loc, msg.Val, vw)
	}
}

func tsoEnabled(m *memtso.State, tid lang.Tid, op prog.MemOp) bool {
	switch op.Kind {
	case prog.OpWrite:
		return m.CanWrite(tid, 8)
	case prog.OpRead:
		return true
	case prog.OpWait:
		return m.Lookup(tid, op.Loc) == op.WVal
	case prog.OpBCAS:
		return m.BufEmpty(tid) && m.Mem[op.Loc] == op.Exp
	default:
		return m.BufEmpty(tid)
	}
}

func tsoStep(m *memtso.State, tid lang.Tid, op prog.MemOp, valCount int) lang.Label {
	switch op.Kind {
	case prog.OpWrite:
		m.Write(tid, op.Loc, op.WVal)
		return lang.WriteLab(op.Loc, op.WVal)
	case prog.OpRead, prog.OpWait:
		return lang.ReadLab(op.Loc, m.Lookup(tid, op.Loc))
	default:
		cur := m.Mem[op.Loc]
		label, _ := prog.SCLabel(op, cur, valCount)
		if label.Typ == lang.LRMW {
			m.RMW(tid, label.Loc, label.VR, label.VW)
		}
		return label
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "run:", err)
	os.Exit(2)
}
