// Command fencer enforces robustness: given a program that is not
// execution-graph robust against RA, it searches for a minimal set of
// SC fences (Example 3.6's FADDs on a distinguished shared location) whose
// insertion makes the program robust, then re-verifies the strengthened
// program — the workflow the paper's introduction proposes.
//
// Usage:
//
//	fencer [flags] file.lit
//	fencer -corpus SB
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fence"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/parser"
)

func main() {
	maxRepairs := flag.Int("maxrepairs", 4, "largest repair set to try")
	strategy := flag.String("strategy", "fences", "repair moves: fences, rmws or mixed")
	corpusName := flag.String("corpus", "", "repair a built-in corpus program")
	show := flag.Bool("print", true, "print the strengthened program")
	flag.Parse()

	var program *lang.Program
	switch {
	case *corpusName != "":
		e, err := litmus.Get(*corpusName)
		if err != nil {
			fatal(err)
		}
		program = e.Program()
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		program, err = parser.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: fencer [flags] file.lit")
		os.Exit(2)
	}

	var strat fence.Strategy
	switch *strategy {
	case "fences":
		strat = fence.Fences
	case "rmws":
		strat = fence.RMWs
	case "mixed":
		strat = fence.Mixed
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	placements, fixed, err := fence.Enforce(program, fence.Options{MaxRepairs: *maxRepairs, Strategy: strat})
	if err != nil {
		fatal(err)
	}
	if len(placements) == 0 {
		fmt.Printf("%s is already robust against RA; no fences needed\n", program.Name)
		return
	}
	fmt.Printf("%s: robust after %d repair(s):\n", program.Name, len(placements))
	for _, pl := range placements {
		th := &program.Threads[pl.Tid]
		verb := "fence before"
		if pl.Kind == fence.StrengthenWrite {
			verb = "strengthen"
		}
		fmt.Printf("  %s: %s %q\n", th.Name, verb, program.FmtInst(th, &th.Insts[pl.At]))
	}
	if *show {
		fmt.Println()
		fmt.Print(fixed.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fencer:", err)
	os.Exit(2)
}
