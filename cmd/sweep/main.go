// Command sweep measures how the verifier scales with the workload
// parameters the paper's Figure 7 varies implicitly (its spinlock/
// spinlock4 and ticketlock/ticketlock4 row pairs): thread count and
// acquisitions per thread, for the two lock families plus Lamport's fast
// mutex. For each point it reports the instrumented state count and time
// against the plain-SC baseline — the robustness-checking overhead curve.
//
// Usage:
//
//	sweep [-maxthreads N] [-rounds N] [-lamport] [-workers N] [-timeout d]
//	      [-prune] [-noreduce]
//
// With -timeout, each sweep point is abandoned (and reported as such)
// once the per-point deadline expires, so a sweep past the machine's
// comfort zone degrades into "timed out" rows instead of hanging.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/parser"
)

func main() {
	maxThreads := flag.Int("maxthreads", 5, "largest thread count")
	rounds := flag.Int("rounds", 2, "acquisitions per thread")
	withLamport := flag.Bool("lamport", false, "include the Lamport sweep (minutes at 3 threads)")
	workers := flag.Int("workers", 0, "parallel exploration workers (0 = all cores, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "per-point deadline (0 = none)")
	prune := flag.Bool("prune", false, "run the static conflict-analysis pre-pass before exploring")
	noReduce := flag.Bool("noreduce", false, "disable partial-order reduction (ample sets, sleep sets, thread symmetry)")
	flag.Parse()

	fmt.Printf("%-22s %10s %12s %10s %12s %8s\n",
		"program", "SCM states", "SCM time", "SC states", "SC time", "ratio")
	// measure runs one engine invocation under its own -timeout deadline,
	// canceled as soon as the measurement returns. The previous version
	// shared a single per-row context between the SCM run and the SC
	// baseline, so the baseline only got whatever budget the SCM run left
	// over (nothing at all after an SCM timeout), and the deferred cancels
	// kept every row's timer alive until the whole sweep exited.
	measure := func(f func(ctx context.Context) error) error {
		ctx := context.Background()
		cancel := func() {}
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		defer cancel()
		return f(ctx)
	}
	row := func(name, src string) {
		p, err := parser.Parse(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		var v *core.Verdict
		err = measure(func(ctx context.Context) error {
			var verr error
			v, verr = core.Verify(p, core.Options{AbstractVals: true, HashCompact: true, Workers: *workers, Ctx: ctx, StaticPrune: *prune, Reduce: !*noReduce})
			return verr
		})
		if errors.Is(err, core.ErrCanceled) {
			fmt.Printf("%-22s %10s %12s\n", name, "-", "timed out")
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", name, err)
			return
		}
		if !v.Robust {
			fmt.Fprintln(os.Stderr, "sweep:", name, "unexpectedly non-robust")
			return
		}
		var sc *core.SCVerdict
		err = measure(func(ctx context.Context) error {
			var verr error
			sc, verr = core.VerifySC(p, core.Options{Workers: *workers, Ctx: ctx, Reduce: !*noReduce})
			return verr
		})
		if errors.Is(err, core.ErrCanceled) {
			fmt.Printf("%-22s %10d %12v %10s %12s\n", name, v.States, v.Elapsed.Round(time.Millisecond), "-", "timed out")
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", name, err)
			return
		}
		ratio := float64(v.States) / float64(sc.States)
		fmt.Printf("%-22s %10d %12v %10d %12v %8.1f\n",
			name, v.States, v.Elapsed.Round(time.Millisecond),
			sc.States, sc.Elapsed.Round(time.Millisecond), ratio)
	}
	// The generator sources carry their parameters in the program name.
	for n := 2; n <= *maxThreads; n++ {
		row(fmt.Sprintf("spinlock n=%d r=%d", n, *rounds), litmus.SpinlockSrc(n, *rounds))
	}
	for n := 2; n <= *maxThreads; n++ {
		row(fmt.Sprintf("ticketlock n=%d r=%d", n, *rounds), litmus.TicketlockSrc(n, *rounds))
	}
	if *withLamport {
		for n := 2; n <= 3; n++ {
			row(fmt.Sprintf("lamport-ra n=%d", n), litmus.LamportSrc(n))
		}
	}
}
