// Command sweep measures how the verifier scales with the workload
// parameters the paper's Figure 7 varies implicitly (its spinlock/
// spinlock4 and ticketlock/ticketlock4 row pairs): thread count and
// acquisitions per thread, for the two lock families plus Lamport's fast
// mutex. For each point it reports the instrumented state count and time
// against the plain-SC baseline — the robustness-checking overhead curve.
//
// Usage:
//
//	sweep [-maxthreads N] [-rounds N] [-lamport] [-workers N] [-timeout d]
//	      [-prune] [-noreduce]
//	sweep -models ra,sra,tso,sc [-json BENCH_models.json]
//
// With -models, sweep instead grows the cross-model verdict matrix over
// the Figure 7 corpus: one row per program, one cell per verification
// mode (verdict, explored states, time), optionally written as JSON for
// the CI benchmark artifact. With -timeout, each sweep point is abandoned
// (and reported as such) once the per-point deadline expires, so a sweep
// past the machine's comfort zone degrades into "timed out" rows instead
// of hanging.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/model"
	"repro/internal/parser"
	"repro/internal/staterobust"
)

func main() {
	maxThreads := flag.Int("maxthreads", 5, "largest thread count")
	rounds := flag.Int("rounds", 2, "acquisitions per thread")
	withLamport := flag.Bool("lamport", false, "include the Lamport sweep (minutes at 3 threads)")
	workers := flag.Int("workers", 0, "parallel exploration workers (0 = all cores, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "per-point deadline (0 = none)")
	prune := flag.Bool("prune", false, "run the static conflict-analysis pre-pass before exploring")
	noReduce := flag.Bool("noreduce", false, "disable partial-order reduction (ample sets, sleep sets, thread symmetry)")
	models := flag.String("models", "", "comma-separated verification modes: cross-model matrix over the Figure 7 corpus instead of the lock sweeps")
	jsonOut := flag.String("json", "", "with -models, also write the matrix as JSON to this file")
	maxStates := flag.Int("max", 0, "state bound per matrix cell with -models (0 = 2M default)")
	flag.Parse()

	if *models != "" {
		os.Exit(matrixMain(*models, *jsonOut, *maxStates, *workers, *timeout, *prune, !*noReduce))
	}

	fmt.Printf("%-22s %10s %12s %10s %12s %8s\n",
		"program", "SCM states", "SCM time", "SC states", "SC time", "ratio")
	// measure runs one engine invocation under its own -timeout deadline,
	// canceled as soon as the measurement returns. The previous version
	// shared a single per-row context between the SCM run and the SC
	// baseline, so the baseline only got whatever budget the SCM run left
	// over (nothing at all after an SCM timeout), and the deferred cancels
	// kept every row's timer alive until the whole sweep exited.
	measure := func(f func(ctx context.Context) error) error {
		ctx := context.Background()
		cancel := func() {}
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		defer cancel()
		return f(ctx)
	}
	row := func(name, src string) {
		p, err := parser.Parse(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		var v *core.Verdict
		err = measure(func(ctx context.Context) error {
			var verr error
			v, verr = core.Verify(p, core.Options{AbstractVals: true, HashCompact: true, Workers: *workers, Ctx: ctx, StaticPrune: *prune, Reduce: !*noReduce})
			return verr
		})
		if errors.Is(err, core.ErrCanceled) {
			fmt.Printf("%-22s %10s %12s\n", name, "-", "timed out")
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", name, err)
			return
		}
		if !v.Robust {
			fmt.Fprintln(os.Stderr, "sweep:", name, "unexpectedly non-robust")
			return
		}
		var sc *core.SCVerdict
		err = measure(func(ctx context.Context) error {
			var verr error
			sc, verr = core.VerifySC(p, core.Options{Workers: *workers, Ctx: ctx, Reduce: !*noReduce})
			return verr
		})
		if errors.Is(err, core.ErrCanceled) {
			fmt.Printf("%-22s %10d %12v %10s %12s\n", name, v.States, v.Elapsed.Round(time.Millisecond), "-", "timed out")
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", name, err)
			return
		}
		ratio := float64(v.States) / float64(sc.States)
		fmt.Printf("%-22s %10d %12v %10d %12v %8.1f\n",
			name, v.States, v.Elapsed.Round(time.Millisecond),
			sc.States, sc.Elapsed.Round(time.Millisecond), ratio)
	}
	// The generator sources carry their parameters in the program name.
	for n := 2; n <= *maxThreads; n++ {
		row(fmt.Sprintf("spinlock n=%d r=%d", n, *rounds), litmus.SpinlockSrc(n, *rounds))
	}
	for n := 2; n <= *maxThreads; n++ {
		row(fmt.Sprintf("ticketlock n=%d r=%d", n, *rounds), litmus.TicketlockSrc(n, *rounds))
	}
	if *withLamport {
		for n := 2; n <= 3; n++ {
			row(fmt.Sprintf("lamport-ra n=%d", n), litmus.LamportSrc(n))
		}
	}
}

// matrixCell is one (program, mode) measurement of the cross-model
// verdict matrix; the JSON shape is the BENCH_models.json contract.
type matrixCell struct {
	Program string `json:"program"`
	Mode    string `json:"mode"`
	// Status: "ok" (verdict below is meaningful), "bound" (state budget
	// exhausted), "timeout" (per-point deadline), or "skipped" (Big row).
	Status     string  `json:"status"`
	Robust     bool    `json:"robust"`
	States     int     `json:"states,omitempty"`
	SCStates   int     `json:"scStates,omitempty"`
	WeakStates int     `json:"weakStates,omitempty"`
	ElapsedMs  float64 `json:"elapsedMs,omitempty"`
}

// matrixMain runs the per-model comparison table over the Figure 7
// corpus: every mode answers its robustness question about every row, so
// the instrumented-TSO column can be read off against the exhaustive
// state-tso one, and the graph-RA column against the state machines.
func matrixMain(spec, jsonOut string, maxStates, workers int, timeout time.Duration, prune, reduce bool) int {
	var modes []string
	for _, m := range strings.Split(spec, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if !model.Valid(m) {
			fmt.Fprintf(os.Stderr, "sweep: unknown mode %q (supported: %s)\n", m, model.ModeList())
			return 1
		}
		modes = append(modes, m)
	}
	if len(modes) == 0 {
		fmt.Fprintf(os.Stderr, "sweep: -models: empty mode list (supported: %s)\n", model.ModeList())
		return 1
	}
	if maxStates <= 0 {
		maxStates = 2_000_000
	}

	var cells []matrixCell
	fmt.Printf("%-22s", "program")
	for _, m := range modes {
		fmt.Printf("  %-20s", m)
	}
	fmt.Println()
	for _, e := range litmus.Fig7() {
		fmt.Printf("%-22s", e.Name)
		for _, mode := range modes {
			c := matrixCell{Program: e.Name, Mode: mode, Status: "ok"}
			if e.Big {
				c.Status = "skipped"
				cells = append(cells, c)
				fmt.Printf("  %-20s", "skipped (big)")
				continue
			}
			ctx := context.Background()
			cancel := func() {}
			if timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, timeout)
			}
			rr, err := model.Run(mode, e.Program(), model.RunOpts{
				MaxStates:   maxStates,
				Workers:     workers,
				StaticPrune: prune,
				Reduce:      reduce,
				Ctx:         ctx,
			})
			cancel()
			switch {
			case err == nil:
				c.Robust = rr.Robust
				c.States = rr.States
				c.SCStates = rr.SCStates
				c.WeakStates = rr.WeakStates
				c.ElapsedMs = float64(rr.Elapsed) / float64(time.Millisecond)
				mark := "✗"
				if rr.Robust {
					mark = "✓"
				}
				cell := fmt.Sprintf("%s %d %v", mark, rr.States, rr.Elapsed.Round(time.Millisecond))
				fmt.Printf("  %s%*s", cell, pad(20, cell), "")
			case errors.Is(err, core.ErrStateBound) || errors.Is(err, staterobust.ErrBound):
				c.Status = "bound"
				fmt.Printf("  %-20s", "bound")
			case errors.Is(err, core.ErrCanceled) || errors.Is(err, staterobust.ErrCanceled):
				c.Status = "timeout"
				fmt.Printf("  %-20s", "timeout")
			default:
				fmt.Fprintf(os.Stderr, "sweep: %s/%s: %v\n", e.Name, mode, err)
				return 1
			}
			cells = append(cells, c)
		}
		fmt.Println()
	}

	if jsonOut != "" {
		doc := struct {
			Modes []string     `json:"modes"`
			Cells []matrixCell `json:"cells"`
		}{modes, cells}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			return 1
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote %d cells to %s\n", len(cells), jsonOut)
	}
	return 0
}

// pad returns the spaces needed to fill cell out to width runes (the
// verdict marks are multi-byte, so %-*s alone misaligns).
func pad(width int, cell string) int {
	if n := len([]rune(cell)); n < width {
		return width - n
	}
	return 0
}
