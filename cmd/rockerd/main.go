// Command rockerd serves the robustness verifier over HTTP: a job queue
// with bounded concurrency and backpressure, per-job deadlines with
// cooperative cancellation, an LRU verdict cache keyed by the canonical
// LTS digest, live progress via polling and NDJSON streaming, and
// graceful drain on SIGTERM. With -store the verdict cache gains a
// crash-recoverable disk log that survives restarts; with -peers several
// rockerd processes form a digest-addressed cluster (rendezvous routing,
// work stealing, batch verification). See docs/rockerd.md for the API.
//
// Usage:
//
//	rockerd [-addr :8723] [-jobs N] [-queue N] [-cache N]
//	        [-job-timeout d] [-max-timeout d] [-max N] [-workers N]
//	        [-drain-timeout d] [-store verdicts.log]
//	        [-node-id n1 -peers n1@host1:8723,n2@host2:8723,...]
//	        [-steal-interval d]
//
// A quick round trip:
//
//	curl -s --data-binary @prog.lit localhost:8723/v1/verify?wait=1
//
// A three-node local cluster:
//
//	rockerd -addr :8723 -node-id n1 -store n1.log -peers n1@localhost:8723,n2@localhost:8724,n3@localhost:8725 &
//	rockerd -addr :8724 -node-id n2 -store n2.log -peers n1@localhost:8723,n2@localhost:8724,n3@localhost:8725 &
//	rockerd -addr :8725 -node-id n3 -store n3.log -peers n1@localhost:8723,n2@localhost:8724,n3@localhost:8725 &
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	jobs := flag.Int("jobs", 2, "concurrently running verification jobs")
	queueDepth := flag.Int("queue", 8, "admission queue depth beyond running jobs")
	cacheSize := flag.Int("cache", 256, "verdict cache capacity (entries)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "default per-job deadline")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")
	maxStates := flag.Int("max", 8<<20, "per-job explored-state bound")
	workers := flag.Int("workers", 0, "exploration workers per job (0 = all cores)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long SIGTERM waits for in-flight jobs before force-canceling them")
	storePath := flag.String("store", "", "persistent verdict log path (empty = memory-only cache)")
	nodeID := flag.String("node-id", "", "this node's cluster identity (required with -peers)")
	peers := flag.String("peers", "", "full cluster membership as id@host:port,... (including this node)")
	stealInterval := flag.Duration("steal-interval", 250*time.Millisecond,
		"idle-node work-stealing poll cadence (negative disables stealing)")
	flag.Parse()

	cfg := service.Config{
		MaxJobs:        *jobs,
		MaxQueue:       *queueDepth,
		CacheSize:      *cacheSize,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		MaxStates:      *maxStates,
		Workers:        *workers,
		StorePath:      *storePath,
		StealInterval:  *stealInterval,
	}
	if *peers != "" {
		if *nodeID == "" {
			log.Fatalf("rockerd: -peers requires -node-id")
		}
		members, err := cluster.ParseMembers(*peers)
		if err != nil {
			log.Fatalf("rockerd: %v", err)
		}
		cl, err := cluster.New(cluster.Config{SelfID: *nodeID, Members: members})
		if err != nil {
			log.Fatalf("rockerd: %v", err)
		}
		cfg.Cluster = cl
	} else if *nodeID != "" {
		log.Fatalf("rockerd: -node-id requires -peers")
	}

	srv, err := service.New(cfg)
	if err != nil {
		log.Fatalf("rockerd: %v", err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		switch {
		case cfg.Cluster != nil:
			log.Printf("rockerd: node %s listening on %s (%d jobs, queue %d, %d peers, store %q)",
				*nodeID, *addr, *jobs, *queueDepth, len(cfg.Cluster.Peers()), *storePath)
		case *storePath != "":
			log.Printf("rockerd: listening on %s (%d jobs, queue %d, store %q)",
				*addr, *jobs, *queueDepth, *storePath)
		default:
			log.Printf("rockerd: listening on %s (%d jobs, queue %d)", *addr, *jobs, *queueDepth)
		}
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("rockerd: %v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections (in-flight requests —
	// including long polls and streams — get the drain window to finish),
	// then drain the job pool and flush the verdict store.
	log.Printf("rockerd: signal received, draining (up to %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = hs.Shutdown(dctx)
	if err := srv.Drain(dctx); err != nil {
		log.Printf("rockerd: %v", err)
		fmt.Fprintln(os.Stderr, "rockerd: forced shutdown")
		os.Exit(1)
	}
	log.Printf("rockerd: drained cleanly")
}
