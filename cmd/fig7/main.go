// Command fig7 regenerates the paper's Figure 7 evaluation table over the
// embedded corpus:
//
//	Res     execution-graph robustness against RA (✓/✗), decided by the
//	        §5 instrumented-SC reduction (cmd/rocker's engine)
//	#T/LoC  program shape
//	Time    verification time and explored states
//	SC      plain SC exploration (assertions only) for comparison
//	TSO     the Trencher-column stand-in: precise state robustness
//	        against x86-TSO (see DESIGN.md for the substitution notes)
//
// Absolute times differ from the paper (different machine, different model
// checker, no gcc compilation phase); the verdicts and the relative shape
// (instrumented vs SC-only cost, which rows are the expensive ones) are
// the reproduction targets — see EXPERIMENTS.md.
//
// Usage:
//
//	fig7 [-big] [-tso] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/staterobust"
)

func main() {
	withBig := flag.Bool("big", false, "include the multi-million-state rows (lamport2-3-ra; minutes of runtime)")
	withTSO := flag.Bool("tso", true, "run the TSO state-robustness baseline column")
	markdown := flag.Bool("markdown", false, "emit a markdown table")
	flag.Parse()

	type row struct {
		name               string
		res                string
		threads, loc       int
		states             int
		elapsed            time.Duration
		scElapsed          time.Duration
		tsoRes, tsoElapsed string
		ok                 bool
	}
	var rows []row
	mismatches := 0
	for _, e := range litmus.Fig7() {
		if e.Big && !*withBig {
			rows = append(rows, row{name: e.Name, res: "(skipped; rerun with -big)", ok: true})
			continue
		}
		p := e.Program()
		v, err := core.Verify(p, core.Options{AbstractVals: true, HashCompact: e.Big})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig7: %s: %v\n", e.Name, err)
			continue
		}
		sc, err := core.VerifySC(p, core.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig7: %s: SC: %v\n", e.Name, err)
			continue
		}
		r := row{
			name:      e.Name,
			threads:   p.NumThreads(),
			loc:       p.LoC(),
			states:    v.States,
			elapsed:   v.Elapsed.Round(time.Millisecond),
			scElapsed: sc.Elapsed.Round(time.Millisecond),
			ok:        v.Robust == e.RobustRA,
		}
		if v.Robust {
			r.res = "✓"
		} else {
			r.res = "✗"
		}
		if !r.ok {
			mismatches++
			r.res += " (MISMATCH vs paper)"
		}
		if *withTSO && !e.Big && e.Name != "nbw-w-lr-rl" {
			start := time.Now()
			res, err := staterobust.CheckTSO(p, staterobust.Limits{MaxStates: 30_000_000, TSOBufCap: 4})
			switch {
			case err != nil:
				r.tsoRes = "-"
			case res.Robust:
				r.tsoRes = "✓"
			default:
				r.tsoRes = "✗"
			}
			r.tsoElapsed = time.Since(start).Round(time.Millisecond).String()
		} else {
			r.tsoRes, r.tsoElapsed = "-", "-"
		}
		rows = append(rows, r)
	}

	if *markdown {
		fmt.Println("| Program | Res | #T | LoC | Time | States | SC | TSO (Res/Time) |")
		fmt.Println("|---|---|---|---|---|---|---|---|")
		for _, r := range rows {
			fmt.Printf("| %s | %s | %d | %d | %v | %d | %v | %s / %s |\n",
				r.name, r.res, r.threads, r.loc, r.elapsed, r.states, r.scElapsed, r.tsoRes, r.tsoElapsed)
		}
	} else {
		fmt.Printf("%-22s %-4s %3s %5s %12s %10s %10s  %s\n", "Program", "Res", "#T", "LoC", "Time", "States", "SC", "TSO")
		for _, r := range rows {
			if r.threads == 0 {
				fmt.Printf("%-22s %s\n", r.name, r.res)
				continue
			}
			fmt.Printf("%-22s %-4s %3d %5d %12v %10d %10v  %s %s\n",
				r.name, r.res, r.threads, r.loc, r.elapsed, r.states, r.scElapsed, r.tsoRes, r.tsoElapsed)
		}
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "fig7: %d verdict mismatches against the paper\n", mismatches)
		os.Exit(1)
	}
}
