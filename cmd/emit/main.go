// Command emit compiles a program into a standalone Go verifier — the
// analogue of Rocker's Promela generation (§7): the original tool emitted
// an instrumented Spin model; this one emits an instrumented, specialized
// Go program that performs the same §5 search when built and run.
//
// Usage:
//
//	emit file.lit > verifier.go && go run verifier.go
//	emit -corpus peterson-ra -o verifier.go
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/emit"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/parser"
)

func main() {
	full := flag.Bool("full", false, "disable abstract value management (§5.1)")
	out := flag.String("o", "", "output file (default stdout)")
	corpusName := flag.String("corpus", "", "compile a built-in corpus program")
	flag.Parse()

	var program *lang.Program
	switch {
	case *corpusName != "":
		e, err := litmus.Get(*corpusName)
		if err != nil {
			fatal(err)
		}
		program = e.Program()
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		program, err = parser.Parse(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: emit [flags] file.lit")
		os.Exit(2)
	}

	src, err := emit.Generate(program, emit.Options{AbstractVals: !*full})
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "emit: wrote %s (%d bytes); run with: go run %s\n", *out, len(src), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emit:", err)
	os.Exit(2)
}
