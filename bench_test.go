// Benchmarks regenerating the paper's evaluation (Figure 7 — its single
// experimental exhibit) and the ablations of the design choices DESIGN.md
// calls out. Each Figure 7 row gets three benchmarks:
//
//	BenchmarkFig7/<row>       the robustness verification itself (the
//	                          paper's "Time" column)
//	BenchmarkSCOnly/<row>     plain SC exploration (the "SC" column)
//	BenchmarkTSO/<row>        the Trencher-column stand-in (state
//	                          robustness against TSO), small rows only
//
// plus:
//
//	BenchmarkAblationValues/...   §5.1 abstract value management on vs off
//	                              (the paper reports ~9× on ticketlock4)
//	BenchmarkAblationHashCompact  exact vs hash-compacted visited set
//	BenchmarkAblationEpsGranular  ε-compressed vs ε-granular SC exploration
//
// Absolute numbers are machine- and engine-specific; the reproduction
// targets are the verdicts and the relative shape (see EXPERIMENTS.md).
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/litmus"
	"repro/internal/parser"
	"repro/internal/staterobust"
)

func benchVerify(b *testing.B, name string, opts core.Options) {
	e, err := litmus.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	p := e.Program()
	b.ReportAllocs()
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		v, err := core.Verify(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if v.Robust != e.RobustRA {
			b.Fatalf("verdict %v, want %v", v.Robust, e.RobustRA)
		}
		states = v.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkFig7 verifies every Figure 7 row with the default configuration
// (abstract values; hash-compact storage for the multi-million-state row).
func BenchmarkFig7(b *testing.B) {
	for _, e := range litmus.Fig7() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			if e.Big && testing.Short() {
				b.Skip("multi-minute row; run without -short")
			}
			benchVerify(b, e.Name, core.Options{AbstractVals: true, HashCompact: e.Big})
		})
	}
}

// BenchmarkSCOnly explores each row under plain SC (assertion checking
// only) — the Figure 7 "SC" comparison column.
func BenchmarkSCOnly(b *testing.B) {
	for _, e := range litmus.Fig7() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			p := e.Program()
			b.ReportAllocs()
			b.ResetTimer()
			var states int
			for i := 0; i < b.N; i++ {
				v, err := core.VerifySC(p, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if v.AssertFail != nil {
					b.Fatalf("assertion failed under SC")
				}
				states = v.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkTSO runs the Trencher-column stand-in on the rows whose TSO
// product fits comfortably (see DESIGN.md on the substitution).
func BenchmarkTSO(b *testing.B) {
	for _, name := range []string{
		"barrier", "dekker-sc", "dekker-tso", "peterson-sc", "peterson-tso",
		"peterson-ra", "peterson-ra-dmitriy", "peterson-ra-bratosz",
		"lamport2-sc", "spinlock", "spinlock4", "ticketlock",
		"cilk-the-wsq-sc", "cilk-the-wsq-tso",
	} {
		name := name
		b.Run(name, func(b *testing.B) {
			e, err := litmus.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			p := e.Program()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := staterobust.CheckTSO(p, staterobust.Limits{MaxStates: 30_000_000, TSOBufCap: 4})
				if err != nil {
					b.Fatal(err)
				}
				if res.Robust != e.RobustTSO {
					b.Fatalf("TSO verdict %v, want %v", res.Robust, e.RobustTSO)
				}
			}
		})
	}
}

// BenchmarkParallel sweeps the worker count over medium Figure 7 rows and
// one large generated row — the scaling curve of the parallel exploration
// engine. workers=1 is the sequential reference path (no engine, no
// sharded store); the speedup at 4 workers is the tentpole number, and is
// only meaningful on a machine with ≥4 cores (on a single-core box every
// worker count degenerates to a slightly slower sequential run).
// ticketlock-n5 is the headline row: the Figure 7 ticketlock family at 5
// threads × 2 acquisitions, ~1.1M instrumented states — well past the
// point where per-worker scratch and sharded interning pay.
func BenchmarkParallel(b *testing.B) {
	for _, name := range []string{"peterson-ra", "seqlock", "ticketlock4", "lamport2-ra"} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/w%d", name, w), func(b *testing.B) {
				benchVerify(b, name, core.Options{AbstractVals: true, Workers: w})
			})
		}
	}
	big := parser.MustParse(litmus.TicketlockSrc(5, 2))
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ticketlock-n5/w%d", w), func(b *testing.B) {
			if testing.Short() {
				b.Skip("~2.5s per run; run without -short")
			}
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				v, err := core.Verify(big, core.Options{AbstractVals: true, HashCompact: true, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if !v.Robust {
					b.Fatal("ticketlock n=5 unexpectedly non-robust")
				}
				states = v.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkReduce compares exploration with the partial-order reduction
// layer (ample sets, sleep sets, thread symmetry) off and on over every
// Figure 7 row. seqlock and the chase-lev family are the headline rows:
// symmetric reader/thief pairs fold under thread symmetry and their
// post-write phases collapse under read-only ample sets (2.4–8× fewer
// states; the exact on/off table is pinned in internal/core/reduce_test.go).
// benchVerify fails on verdict drift, so the benchmark doubles as a parity
// smoke.
func BenchmarkReduce(b *testing.B) {
	for _, e := range litmus.Fig7() {
		e := e
		for _, reduce := range []bool{false, true} {
			mode := map[bool]string{false: "off", true: "on"}[reduce]
			b.Run(e.Name+"/"+mode, func(b *testing.B) {
				if e.Big && testing.Short() {
					b.Skip("multi-minute row; run without -short")
				}
				benchVerify(b, e.Name, core.Options{AbstractVals: true, HashCompact: e.Big, Reduce: reduce})
			})
		}
	}
}

// BenchmarkAblationValues compares the §5.1 abstract value management
// against full value tracking on the rows where the paper highlights the
// difference (ticketlock4: ~9× in the paper) and on a few controls.
func BenchmarkAblationValues(b *testing.B) {
	for _, name := range []string{"ticketlock", "ticketlock4", "seqlock", "peterson-ra", "rcu"} {
		for _, abstract := range []bool{true, false} {
			mode := map[bool]string{true: "abstract", false: "full"}[abstract]
			b.Run(name+"/"+mode, func(b *testing.B) {
				benchVerify(b, name, core.Options{AbstractVals: abstract})
			})
		}
	}
}

// BenchmarkAblationHashCompact compares exact and hash-compacted visited
// sets on a medium-sized row.
func BenchmarkAblationHashCompact(b *testing.B) {
	for _, hc := range []bool{false, true} {
		mode := map[bool]string{false: "exact", true: "hashcompact"}[hc]
		b.Run("lamport2-ra/"+mode, func(b *testing.B) {
			benchVerify(b, "lamport2-ra", core.Options{AbstractVals: true, HashCompact: hc})
		})
	}
}

// BenchmarkAblationEpsGranular contrasts the verifier's ε-compressed SC
// exploration with the ε-granular exploration the state-robustness
// explorers must use (DESIGN.md's ε-step compression note).
func BenchmarkAblationEpsGranular(b *testing.B) {
	e, err := litmus.Get("peterson-ra")
	if err != nil {
		b.Fatal(err)
	}
	p := e.Program()
	b.Run("compressed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.VerifySC(p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("granular", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := staterobust.ReachableSC(p, staterobust.Limits{MaxStates: 10_000_000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLitmus runs the verifier over the §3 litmus tests — the
// fast-feedback path a user iterating on a small algorithm experiences.
func BenchmarkLitmus(b *testing.B) {
	for _, name := range []string{"SB", "MP", "IRIW", "2+2W", "2RMW", "SB+RMWs"} {
		name := name
		b.Run(name, func(b *testing.B) {
			benchVerify(b, name, core.DefaultOptions())
		})
	}
}

// BenchmarkScaling sweeps the lock generators over thread counts — the
// verifier's scaling curve behind the spinlock/spinlock4 and
// ticketlock/ticketlock4 row pairs of Figure 7 (regenerate interactively
// with cmd/sweep).
func BenchmarkScaling(b *testing.B) {
	for n := 2; n <= 5; n++ {
		src := litmus.SpinlockSrc(n, 1)
		b.Run(fmt.Sprintf("spinlock-n%d", n), func(b *testing.B) {
			p := parser.MustParse(src)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Verify(p, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for n := 2; n <= 5; n++ {
		src := litmus.TicketlockSrc(n, 1)
		b.Run(fmt.Sprintf("ticketlock-n%d", n), func(b *testing.B) {
			p := parser.MustParse(src)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Verify(p, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEmitGenerate measures the compiler front half of the
// generate/compile/verify pipeline (cmd/emit); the toolchain invocation
// that dominates end-to-end time — as gcc did for the paper's Spin
// pipeline — is exercised by the emit package's tests instead.
func BenchmarkEmitGenerate(b *testing.B) {
	for _, name := range []string{"SB", "peterson-ra", "rcu", "chase-lev-ra"} {
		name := name
		b.Run(name, func(b *testing.B) {
			e, err := litmus.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			p := e.Program()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := emit.Generate(p, emit.Options{AbstractVals: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
